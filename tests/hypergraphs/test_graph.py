"""Unit tests for the mutable graph substrate."""

import pytest

from repro.hypergraphs.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
)


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_vertices() == 0
        assert graph.num_edges() == 0
        assert graph.vertices() == set()

    def test_vertices_and_edges(self):
        graph = Graph(vertices=[1, 2, 3], edges=[(1, 2)])
        assert graph.num_vertices() == 3
        assert graph.num_edges() == 1
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert not graph.has_edge(1, 3)

    def test_edge_creates_endpoints(self):
        graph = Graph(edges=[("a", "b")])
        assert graph.vertices() == {"a", "b"}

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_duplicate_edge_is_idempotent(self):
        graph = Graph(edges=[(1, 2), (1, 2), (2, 1)])
        assert graph.num_edges() == 1

    def test_add_vertex_idempotent(self):
        graph = Graph()
        graph.add_vertex(1)
        graph.add_vertex(1)
        assert graph.num_vertices() == 1


class TestMutation:
    def test_remove_vertex_drops_incident_edges(self):
        graph = complete_graph(4)
        graph.remove_vertex(0)
        assert graph.num_vertices() == 3
        assert graph.num_edges() == 3
        assert 0 not in graph

    def test_remove_edge(self):
        graph = complete_graph(3)
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.num_edges() == 2

    def test_remove_missing_edge_raises(self):
        graph = Graph(vertices=[1, 2])
        with pytest.raises(KeyError):
            graph.remove_edge(1, 2)

    def test_add_clique(self):
        graph = Graph()
        graph.add_clique([1, 2, 3])
        assert graph.num_edges() == 3
        assert graph.is_clique([1, 2, 3])

    def test_eliminate_connects_neighbourhood(self):
        graph = path_graph(3)  # 0 - 1 - 2
        neighbours = graph.eliminate(1)
        assert neighbours == {0, 2}
        assert graph.has_edge(0, 2)
        assert 1 not in graph

    def test_eliminate_leaf_adds_nothing(self):
        graph = path_graph(3)
        graph.eliminate(0)
        assert graph.num_edges() == 1

    def test_contract_merges_neighbourhoods(self):
        graph = path_graph(4)  # 0-1-2-3
        graph.contract(1, 2)
        assert 2 not in graph
        assert graph.has_edge(1, 3)
        assert graph.has_edge(0, 1)
        assert graph.num_vertices() == 3

    def test_contract_non_edge_raises(self):
        graph = path_graph(3)
        with pytest.raises(KeyError):
            graph.contract(0, 2)


class TestQueries:
    def test_degree_and_neighbours(self):
        graph = complete_graph(5)
        assert graph.degree(0) == 4
        assert graph.neighbours(0) == {1, 2, 3, 4}

    def test_neighbours_returns_copy(self):
        graph = complete_graph(3)
        neighbours = graph.neighbours(0)
        neighbours.add(99)
        assert 99 not in graph.neighbours(0)

    def test_is_simplicial(self):
        graph = complete_graph(4)
        assert all(graph.is_simplicial(v) for v in graph)
        graph = cycle_graph(4)
        assert not any(graph.is_simplicial(v) for v in graph)

    def test_leaf_is_simplicial(self):
        graph = path_graph(3)
        assert graph.is_simplicial(0)
        assert not graph.is_simplicial(1)

    def test_is_almost_simplicial(self):
        # In C4, each vertex's two neighbours are non-adjacent, but
        # dropping one leaves a single vertex (trivially a clique).
        graph = cycle_graph(4)
        assert all(graph.is_almost_simplicial(v) for v in graph)

    def test_not_almost_simplicial(self):
        # The center of a star with 3 independent leaves: no single
        # removal makes the rest a clique.
        graph = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        assert not graph.is_almost_simplicial(0)

    def test_fill_in(self):
        star = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        assert star.fill_in(0) == 3
        assert star.fill_in(1) == 0

    def test_connected_components(self):
        graph = Graph(vertices=[1, 2, 3, 4], edges=[(1, 2), (3, 4)])
        components = sorted(graph.connected_components(), key=min)
        assert components == [{1, 2}, {3, 4}]

    def test_subgraph(self):
        graph = complete_graph(4)
        sub = graph.subgraph([0, 1, 2])
        assert sub.num_vertices() == 3
        assert sub.num_edges() == 3

    def test_subgraph_unknown_vertex(self):
        with pytest.raises(KeyError):
            complete_graph(3).subgraph([0, 99])

    def test_copy_is_independent(self, square):
        clone = square.copy()
        clone.remove_vertex(1)
        assert 1 in square

    def test_equality(self):
        assert complete_graph(3) == complete_graph(3)
        assert complete_graph(3) != complete_graph(4)

    def test_iteration_and_len(self):
        graph = complete_graph(3)
        assert sorted(graph) == [0, 1, 2]
        assert len(graph) == 3


class TestFactories:
    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.num_edges() == 10

    def test_path_graph(self):
        graph = path_graph(5)
        assert graph.num_edges() == 4

    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert graph.num_edges() == 5
        assert all(graph.degree(v) == 2 for v in graph)

    def test_tiny_cycle_rejected(self):
        with pytest.raises(ValueError):
            cycle_graph(2)
