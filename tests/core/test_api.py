"""Tests for the high-level public API."""

import pytest

from repro.core.api import (
    decompose,
    decompose_graph,
    generalized_hypertree_width,
    ghw_bounds,
    ghw_upper_bound,
    treewidth,
    treewidth_bounds,
    treewidth_upper_bound,
    validate_hypergraph,
)
from repro.hypergraphs.graph import Graph, cycle_graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.instances.dimacs_like import grid_graph
from repro.instances.hypergraphs import adder, clique_hypergraph


class TestTreewidth:
    def test_astar_and_bb_agree(self):
        graph = grid_graph(3)
        assert treewidth(graph, "astar").value == 3
        assert treewidth(graph, "bb").value == 3

    def test_accepts_hypergraph(self, example5):
        # Figure 2.6: Example 5 admits a width-2 tree decomposition.
        result = treewidth(example5)
        assert result.value == 2

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            treewidth(cycle_graph(4), "magic")

    def test_bounds_bracket_truth(self):
        graph = grid_graph(4)
        lower, upper = treewidth_bounds(graph)
        assert lower <= 4 <= upper

    def test_upper_bound_methods(self):
        graph = cycle_graph(8)
        assert treewidth_upper_bound(graph, "min-fill") == 2
        assert treewidth_upper_bound(graph, "ga") >= 2


class TestGhw:
    def test_bb_and_astar_agree(self, example5):
        assert generalized_hypertree_width(example5, "bb").value == 2
        assert generalized_hypertree_width(example5, "astar").value == 2

    def test_unknown_algorithm(self, example5):
        with pytest.raises(ValueError):
            generalized_hypertree_width(example5, "magic")

    def test_bounds(self, example5):
        lower, upper = ghw_bounds(example5)
        assert lower <= 2 <= upper

    def test_upper_bound_methods(self, example5):
        assert ghw_upper_bound(example5, "ga") >= 2
        assert ghw_upper_bound(example5, "saiga") >= 2
        with pytest.raises(ValueError):
            ghw_upper_bound(example5, "magic")

    def test_isolated_vertices_rejected(self):
        bad = Hypergraph({"e": {1, 2}}, vertices=[99])
        with pytest.raises(ValueError):
            generalized_hypertree_width(bad)
        with pytest.raises(ValueError):
            validate_hypergraph(bad)


class TestDecompose:
    def test_graph_decomposition_valid_and_optimal(self):
        graph = grid_graph(3)
        decomposition = decompose_graph(graph)
        decomposition.validate(graph)
        assert decomposition.width() == 3

    def test_graph_decomposition_heuristic(self):
        graph = cycle_graph(10)
        decomposition = decompose_graph(graph, algorithm="min-fill")
        decomposition.validate(graph)
        assert decomposition.width() == 2

    def test_graph_decomposition_ga(self):
        graph = cycle_graph(6)
        decomposition = decompose_graph(graph, algorithm="ga")
        decomposition.validate(graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            decompose_graph(Graph())

    def test_ghd_exact(self, example5):
        ghd = decompose(example5, algorithm="bb")
        ghd.validate(example5)
        assert ghd.is_complete(example5)
        assert ghd.width() == 2

    def test_ghd_heuristics(self, example5):
        for algorithm in ("ga", "saiga", "min-fill"):
            ghd = decompose(example5, algorithm=algorithm, cover="greedy")
            ghd.validate(example5)
            assert ghd.width() >= 2

    def test_ghd_incomplete_on_request(self, example5):
        ghd = decompose(example5, complete=False)
        ghd.validate(example5)

    def test_adder_ghd(self):
        hypergraph = adder(3)
        ghd = decompose(hypergraph)
        ghd.validate(hypergraph)
        assert ghd.width() == 2

    def test_clique_ghd_width(self):
        hypergraph = clique_hypergraph(6)
        assert decompose(hypergraph).width() == 3


class TestDecisionApis:
    def test_is_treewidth_at_most(self):
        graph = grid_graph(3)  # tw 3
        from repro.core.api import is_treewidth_at_most

        assert is_treewidth_at_most(graph, 3) is True
        assert is_treewidth_at_most(graph, 2) is False
        assert is_treewidth_at_most(graph, 10) is True

    def test_is_ghw_at_most(self, example5):
        from repro.core.api import is_ghw_at_most

        assert is_ghw_at_most(example5, 2) is True
        assert is_ghw_at_most(example5, 1) is False

    def test_budget_exhaustion_returns_none_or_decides(self):
        from repro.core.api import is_treewidth_at_most
        from repro.instances.dimacs_like import queen_graph

        verdict = is_treewidth_at_most(queen_graph(6), 24, node_limit=3)
        assert verdict in (None, False)


class TestByComponents:
    def test_treewidth_by_components_flag(self):
        graph = grid_graph(3)
        graph.add_edge("iso1", "iso2")
        result = treewidth(graph, by_components=True)
        assert result.optimal and result.value == 3

    def test_ghw_by_components_flag(self):
        hypergraph = Hypergraph(
            {"ab": {1, 2}, "bc": {2, 3}, "ca": {1, 3}, "pq": {8, 9}}
        )
        result = generalized_hypertree_width(
            hypergraph, by_components=True
        )
        assert result.optimal and result.value == 2
