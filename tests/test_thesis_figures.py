"""The thesis's worked figures and examples, encoded verbatim.

Each test reproduces one figure/example of the thesis on the exact
structure it uses, asserting the printed outcome. Together with the
table benches these cover every concrete artifact the thesis shows.
"""

import pytest

from repro.csp.acyclic import acyclic_solve, gyo_join_tree, is_acyclic
from repro.csp.builders import example_5_csp
from repro.csp.solve import solve_with_ghd, solve_with_tree_decomposition
from repro.decompositions.elimination import (
    elimination_bags,
    ordering_ghw,
    ordering_to_ghd,
    ordering_to_tree_decomposition,
    ordering_width,
)
from repro.decompositions.leaf_normal_form import (
    extract_ordering,
    transform_leaf_normal_form,
)
from repro.decompositions.tree_decomposition import (
    TreeDecomposition,
    trivial_decomposition,
)
from repro.hypergraphs.elimination_graph import EliminationGraph
from repro.hypergraphs.hypergraph import Hypergraph


class TestFigure2_3:
    """Hypergraph / dual graph / join tree (Figure 2.3's pattern)."""

    def test_acyclic_hypergraph_has_join_tree(self):
        hypergraph = Hypergraph(
            {
                "AEF": {"A", "E", "F"},
                "ABC": {"A", "B", "C"},
                "CDE": {"C", "D", "E"},
                "ACE": {"A", "C", "E"},
            }
        )
        assert is_acyclic(hypergraph)
        parent = gyo_join_tree(hypergraph)
        roots = [n for n, up in parent.items() if up is None]
        assert len(roots) == 1
        # the central edge ACE intersects all others; in a valid join
        # tree every other edge must connect to it either directly or
        # through edges that carry the shared vertices — here each
        # satellite's intersection with the rest lies inside ACE, so
        # GYO attaches all three satellites straight to it.
        satellites = {"AEF", "ABC", "CDE"}
        attached_to_ace = {
            name for name, up in parent.items() if up == "ACE"
        }
        if parent["ACE"] is not None:
            attached_to_ace.add(parent["ACE"])
        assert satellites <= attached_to_ace


class TestFigure2_6_and_2_7:
    """Example 5's width-2 tree decomposition and GHD."""

    def test_figure_2_6_tree_decomposition(self, example5):
        decomposition = TreeDecomposition()
        top = decomposition.add_node({"x1", "x2", "x3"})
        middle = decomposition.add_node({"x1", "x3", "x5"})
        left = decomposition.add_node({"x3", "x4", "x5"})
        right = decomposition.add_node({"x1", "x5", "x6"})
        decomposition.add_edge(top, middle)
        decomposition.add_edge(middle, left)
        decomposition.add_edge(middle, right)
        decomposition.validate(example5)
        assert decomposition.width() == 2

    def test_figure_2_7_ghd_width_2_is_optimal(self, example5):
        from repro.search.bb_ghw import branch_and_bound_ghw

        result = branch_and_bound_ghw(example5)
        assert result.optimal and result.value == 2


class TestFigures2_8_and_2_9:
    """Solving Example 5 from its decompositions."""

    def test_solutions_found_and_valid(self, example5):
        csp = example_5_csp()
        hypergraph = csp.constraint_hypergraph(include_unconstrained=False)
        ordering = extract_ordering(
            trivial_decomposition(hypergraph), hypergraph
        )
        td = ordering_to_tree_decomposition(
            hypergraph.primal_graph(), ordering
        )
        ghd = ordering_to_ghd(hypergraph, ordering, cover="exact")
        for solution in (
            solve_with_tree_decomposition(csp, td),
            solve_with_ghd(csp, ghd),
        ):
            assert solution is not None
            assert csp.is_solution(solution)

    def test_thesis_printed_solution(self):
        """The assignment printed under Example 5 in the thesis text."""
        csp = example_5_csp()
        assert csp.is_solution(
            {"x1": "a", "x2": "b", "x3": "c", "x4": "b", "x5": "c", "x6": "b"}
        )


class TestFigure2_11:
    """Bucket elimination on the six-vertex running hypergraph."""

    def test_bags_and_widths(self, figure_2_11):
        primal = figure_2_11.primal_graph()
        # our convention reverses the thesis's sigma = (x6, ..., x1)
        ordering = ["x1", "x2", "x3", "x4", "x5", "x6"]
        bags = elimination_bags(primal, ordering)
        assert bags["x1"] == {"x1", "x2", "x3"}
        assert ordering_width(primal, ordering) == 2
        ghd = ordering_to_ghd(figure_2_11, ordering, cover="exact")
        ghd.validate(figure_2_11)
        assert ghd.width() == 2

    def test_tree_decomposition_structure(self, figure_2_11):
        primal = figure_2_11.primal_graph()
        ordering = ["x1", "x2", "x3", "x4", "x5", "x6"]
        decomposition = ordering_to_tree_decomposition(primal, ordering)
        decomposition.validate(figure_2_11)
        assert decomposition.num_nodes() == 6


class TestFigures3_2_to_3_6:
    """The leaf-normal-form pipeline on a concrete decomposition."""

    def test_full_pipeline(self, figure_2_11):
        decomposition = trivial_decomposition(figure_2_11)
        normal, leaf_of = transform_leaf_normal_form(
            decomposition, figure_2_11
        )
        normal.validate(figure_2_11)
        # one leaf per hyperedge, labelled by it (Figure 3.3 / 3.4)
        assert len(leaf_of) == 4
        for name, leaf in leaf_of.items():
            assert normal.bags[leaf] == set(figure_2_11.edge(name))
        # the derived ordering's bags embed in the original's (Fig. 3.6)
        ordering = extract_ordering(decomposition, figure_2_11)
        bags = elimination_bags(figure_2_11.primal_graph(), ordering)
        top_bag = figure_2_11.vertices()
        for bag in bags.values():
            assert bag <= top_bag
        assert ordering_ghw(figure_2_11, ordering, cover="exact") <= 4


class TestFigure5_2:
    """Eliminate/restore bookkeeping on the six-vertex graph."""

    def test_eliminate_6_then_2_then_restore(self):
        from repro.hypergraphs.graph import Graph

        graph = Graph(
            edges=[(1, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5), (5, 6), (4, 6)]
        )
        working = EliminationGraph(graph)
        working.eliminate(6)
        # eliminating 6 connects its neighbours 4 and 5 (already adjacent)
        assert working.graph().has_edge(4, 5)
        working.eliminate(2)
        # eliminating 2 connects 1-4 and 3-4
        assert working.graph().has_edge(1, 4)
        assert working.graph().has_edge(3, 4)
        working.restore_all()
        assert working.graph() == graph


class TestExample9:
    """Branch-and-bound pruning produces the optimal value anyway."""

    def test_bounded_search_matches_unbounded(self):
        from repro.instances.dimacs_like import random_gnp
        from repro.search.bb_tw import branch_and_bound_treewidth

        graph = random_gnp(7, 0.5, seed=99)
        pruned = branch_and_bound_treewidth(graph)
        bare = branch_and_bound_treewidth(
            graph, use_pr2=False, use_reductions=False
        )
        assert pruned.value == bare.value
        assert pruned.nodes_expanded <= bare.nodes_expanded


class TestAcyclicSolvingFigure2_5:
    """Figure 2.5's crossing-out semantics: semijoins remove exactly the
    unsupported tuples."""

    def test_semijoin_reduction_prunes_unsupported(self):
        from repro.csp.problem import Constraint, make_csp

        parent = Constraint.make(
            "parent", ("a", "b"), [(1, 1), (2, 2), (3, 3)]
        )
        child = Constraint.make("child", ("b", "c"), [(1, 9), (2, 8)])
        csp = make_csp(
            {"a": [1, 2, 3], "b": [1, 2, 3], "c": [8, 9]},
            [parent, child],
        )
        solution = acyclic_solve(csp)
        assert solution is not None
        assert solution["b"] in (1, 2)  # the (3, 3) tuple was crossed out
        assert csp.is_solution(solution)
